(* CDCL with two-watched literals, VSIDS decision heap, first-UIP clause
   learning, phase saving and Luby restarts. The structure follows
   MiniSat; invariants that matter are commented at the point they are
   maintained. *)

type result = Sat | Unsat | Unknown

let lit v positive = (v * 2) + if positive then 0 else 1
let lit_not l = l lxor 1
let lit_var l = l lsr 1
let lit_is_pos l = l land 1 = 0

(* Growable int vector. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let shrink v n = v.len <- n
end

type clause = {
  lits : int array;
  learned : bool;
  mutable activity : float;
  mutable deleted : bool;
      (* reduced learned clauses (and root-satisfied clauses removed by
         [simplify]) are only marked here; watch lists drop them lazily
         the next time propagation visits them *)
}

(* {1 DRAT proof logging}

   When enabled, the solver records the problem clauses exactly as
   asserted plus a step per clause-database mutation: every learned
   clause (including units enqueued at level 0 and the empty clause on
   a definitive Unsat) and every deletion performed by [reduce_db] or
   [simplify]. The log is a standard forward DRAT trace that an
   independent checker can validate against the recorded CNF; nothing
   in this module checks it. Logging is off by default and costs one
   [None] test per site when off. *)

type proof_step = P_add of int array | P_delete of int array

type proof = {
  mutable steps_rev : proof_step list;
  mutable orig_rev : int list list;  (* clauses as asserted, newest first *)
  mutable nadds : int;
  mutable ndeletes : int;
}

(* {1 Antecedent tracking}

   When enabled, every logged clause — problem clauses as asserted and
   every derived (P_add) step — receives a monotonically increasing
   {e serial}, and every derivation records which serials it resolved
   on: the conflicting clause, each reason clause dereferenced by
   conflict analysis, and the level-0 literals it silently dropped
   (encoded as [-1 - var] and resolved lazily against the solver's
   reason graph — level-0 assignments are never undone, so the reasons
   survive until the walk). On every Unsat exit the solver immediately
   computes the backward dependency cone from the final conflict.

   Two consumers: {!last_cone_tags} maps the cone back to caller tags
   attached via [add_clause ~tag] (the incremental front end tags each
   asserted conjunct, turning the cone into an unsat core over the
   query's conjuncts), and {!trimmed_proof} restricts a DRAT log to the
   cone (backward proof trimming: only clauses reachable from the empty
   clause are kept). Tracking costs one [match] per site when off. *)

type track = {
  mutable cser : int array;  (* clause arena id -> serial, -1 *)
  mutable vser : int array;  (* var -> serial of the unit step that
                                assigned it at level 0, -1 *)
  mutable next_serial : int;
  ants : (int, int array) Hashtbl.t;  (* derived serial -> antecedents;
                                         entries >= 0 are serials,
                                         [-1 - v] is variable [v] *)
  tags : (int, int) Hashtbl.t;  (* serial -> caller tag *)
  mutable orig_ser_rev : int list;  (* serial per [orig_rev] entry *)
  mutable add_ser_rev : int list;  (* serial per [P_add] step *)
  mutable cone : (int, unit) Hashtbl.t option;  (* last Unsat's cone *)
}

type t = {
  mutable nvars : int;
  mutable clauses : clause array;  (* arena; index = clause id *)
  mutable nclauses : int;
  mutable watches : Vec.t array;   (* literal -> clause ids *)
  mutable assigns : int array;     (* var -> -1 / 0 / 1 *)
  mutable levels : int array;
  mutable reasons : int array;     (* var -> clause id or -1 *)
  mutable phase : bool array;      (* saved phase *)
  mutable activity : float array;
  mutable heap : int array;        (* binary max-heap of vars *)
  mutable heap_pos : int array;    (* var -> index in heap, -1 if absent *)
  mutable heap_len : int;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable unsat : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable seen : bool array;       (* scratch for analyze *)
  (* Learned-clause database reduction (MiniSat-style): when the
     conflicts since the last reduction exceed a budget that grows by
     [reduce_grow] per reduction, the lowest-activity half of the live
     learned clauses is deleted. Locked clauses (the reason of a
     currently-assigned variable) and binary clauses are always kept. *)
  mutable nlearned : int;          (* live learned clauses *)
  mutable nproblem : int;          (* live problem (non-learned) clauses *)
  mutable learned_deleted : int;   (* cumulative *)
  mutable reductions : int;
  reduce_interval : int;           (* first reduction budget *)
  reduce_grow : int;
  mutable last_reduce : int;       (* [conflicts] at the last reduction *)
  mutable problem_deleted : int;   (* cumulative, [simplify] only *)
  mutable proof : proof option;    (* DRAT log, when enabled *)
  mutable track : track option;    (* antecedent tracking, when enabled *)
}

let create ?(reduce_interval = 2000) () =
  {
    nvars = 0;
    clauses =
      Array.make 64 { lits = [||]; learned = false; activity = 0.; deleted = false };
    nclauses = 0;
    watches = Array.init 64 (fun _ -> Vec.create ());
    assigns = Array.make 32 (-1);
    levels = Array.make 32 0;
    reasons = Array.make 32 (-1);
    phase = Array.make 32 false;
    activity = Array.make 32 0.;
    heap = Array.make 32 0;
    heap_pos = Array.make 32 (-1);
    heap_len = 0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    unsat = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    seen = Array.make 32 false;
    nlearned = 0;
    nproblem = 0;
    learned_deleted = 0;
    reductions = 0;
    reduce_interval;
    reduce_grow = 300;
    last_reduce = 0;
    problem_deleted = 0;
    proof = None;
    track = None;
  }

let enable_proof s =
  if s.proof = None then
    s.proof <- Some { steps_rev = []; orig_rev = []; nadds = 0; ndeletes = 0 }

let proof_enabled s = s.proof <> None
let proof_steps s =
  match s.proof with None -> [] | Some p -> List.rev p.steps_rev

let proof_cnf s =
  match s.proof with None -> [] | Some p -> List.rev p.orig_rev

let proof_sizes s =
  match s.proof with None -> (0, 0) | Some p -> (p.nadds, p.ndeletes)

let log_add s lits =
  match s.proof with
  | None -> ()
  | Some p ->
    p.steps_rev <- P_add (Array.of_list lits) :: p.steps_rev;
    p.nadds <- p.nadds + 1

let log_delete s (c : clause) =
  match s.proof with
  | None -> ()
  | Some p ->
    (* [lits] is reordered in place by the watch scheme; snapshot it. *)
    p.steps_rev <- P_delete (Array.copy c.lits) :: p.steps_rev;
    p.ndeletes <- p.ndeletes + 1

let log_orig s lits =
  match s.proof with
  | None -> ()
  | Some p -> p.orig_rev <- lits :: p.orig_rev

let enable_tracking s =
  if s.track = None then
    s.track <-
      Some
        {
          cser = Array.make (max 64 (Array.length s.clauses)) (-1);
          vser = Array.make (max 32 s.nvars) (-1);
          next_serial = 0;
          ants = Hashtbl.create 256;
          tags = Hashtbl.create 64;
          orig_ser_rev = [];
          add_ser_rev = [];
          cone = None;
        }

let tracking s = s.track <> None

(* Serial for the next [orig_rev] entry / [P_add] step; -1 when off. *)
let track_orig s tag =
  match s.track with
  | None -> -1
  | Some tr ->
    let k = tr.next_serial in
    tr.next_serial <- k + 1;
    tr.orig_ser_rev <- k :: tr.orig_ser_rev;
    (match tag with Some t -> Hashtbl.replace tr.tags k t | None -> ());
    k

let track_add s tag ants =
  match s.track with
  | None -> -1
  | Some tr ->
    let k = tr.next_serial in
    tr.next_serial <- k + 1;
    tr.add_ser_rev <- k :: tr.add_ser_rev;
    (match ants with [] -> () | _ -> Hashtbl.replace tr.ants k (Array.of_list ants));
    (match tag with Some t -> Hashtbl.replace tr.tags k t | None -> ());
    k

let num_vars s = s.nvars
let num_clauses s = s.nclauses
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_learned s = s.nlearned
let num_problem_clauses s = s.nproblem
let num_learned_deleted s = s.learned_deleted
let num_problem_deleted s = s.problem_deleted
let num_reductions s = s.reductions

let grow_array arr n default =
  let len = Array.length arr in
  if n <= len then arr
  else begin
    let arr' = Array.make (max n (2 * len)) default in
    Array.blit arr 0 arr' 0 len;
    arr'
  end

(* {1 Decision heap ordered by activity} *)

let heap_less s v1 v2 = s.activity.(v1) > s.activity.(v2)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vi) <- j;
  s.heap_pos.(vj) <- i

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_len && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) = -1 then begin
    s.heap <- grow_array s.heap (s.heap_len + 1) 0;
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s (s.heap_len - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    let last = s.heap.(s.heap_len) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  v

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* {1 Variables} *)

let grow_array_bool arr n =
  let len = Array.length arr in
  if n <= len then arr
  else begin
    let arr' = Array.make (max n (2 * len)) false in
    Array.blit arr 0 arr' 0 len;
    arr'
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  (match s.track with
  | Some tr -> tr.vser <- grow_array tr.vser s.nvars (-1)
  | None -> ());
  s.assigns <- grow_array s.assigns s.nvars (-1);
  s.levels <- grow_array s.levels s.nvars 0;
  s.reasons <- grow_array s.reasons s.nvars (-1);
  s.activity <- grow_array s.activity s.nvars 0.;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  s.seen <- grow_array_bool s.seen s.nvars;
  s.phase <- grow_array_bool s.phase s.nvars;
  (let nlits = 2 * s.nvars in
   if nlits > Array.length s.watches then begin
     let w = Array.init (max nlits (2 * Array.length s.watches)) (fun _ ->
       Vec.create ())
     in
     Array.blit s.watches 0 w 0 (Array.length s.watches);
     s.watches <- w
   end);
  heap_insert s v;
  v

let lit_value s l =
  let a = s.assigns.(lit_var l) in
  if a = -1 then -1 else a lxor (l land 1)

(* 1 = true, 0 = false, -1 = unassigned, for literal [l]. *)

let decision_level s = Vec.len s.trail_lim

let enqueue s l reason =
  s.assigns.(lit_var l) <- 1 lxor (l land 1);
  s.levels.(lit_var l) <- decision_level s;
  s.reasons.(lit_var l) <- reason;
  s.phase.(lit_var l) <- lit_is_pos l;
  Vec.push s.trail l

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    for cid = 0 to s.nclauses - 1 do
      let c = s.clauses.(cid) in
      if c.learned then c.activity <- c.activity *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* {1 Clauses} *)

let attach_clause s cid =
  let c = s.clauses.(cid) in
  (* Watch the negations: when a watched literal becomes false we visit
     the clause. *)
  Vec.push s.watches.(lit_not c.lits.(0)) cid;
  Vec.push s.watches.(lit_not c.lits.(1)) cid

let add_clause_internal s lits learned =
  let cid = s.nclauses in
  if cid = Array.length s.clauses then begin
    let arr =
      Array.make (2 * cid)
        { lits = [||]; learned = false; activity = 0.; deleted = false }
    in
    Array.blit s.clauses 0 arr 0 cid;
    s.clauses <- arr
  end;
  let activity = if learned then s.cla_inc else 0. in
  (match s.track with
  | Some tr -> tr.cser <- grow_array tr.cser (cid + 1) (-1)
  | None -> ());
  s.clauses.(cid) <- { lits; learned; activity; deleted = false };
  s.nclauses <- cid + 1;
  if learned then s.nlearned <- s.nlearned + 1
  else s.nproblem <- s.nproblem + 1;
  attach_clause s cid;
  cid

(* Backward closure over recorded antecedents from [roots]. Entries
   >= 0 are serials; [-1 - v] is variable [v], resolved against the
   live reason graph (only level-0 or assumption-implied variables are
   ever encoded, and their assignments are still in place whenever a
   closure is taken — on Unsat, before any backtrack). *)
let close s roots =
  match s.track with
  | None -> Hashtbl.create 1
  | Some tr ->
    let cone = Hashtbl.create 64 in
    let vseen = Hashtbl.create 64 in
    let stack = ref roots in
    let push d = stack := d :: !stack in
    let rec go () =
      match !stack with
      | [] -> ()
      | d :: rest ->
        stack := rest;
        (if d >= 0 then begin
           if not (Hashtbl.mem cone d) then begin
             Hashtbl.replace cone d ();
             match Hashtbl.find_opt tr.ants d with
             | Some deps -> Array.iter push deps
             | None -> ()
           end
         end
         else begin
           let v = -1 - d in
           if not (Hashtbl.mem vseen v) then begin
             Hashtbl.replace vseen v ();
             if v < Array.length tr.vser && tr.vser.(v) >= 0 then
               push tr.vser.(v)
             else begin
               let cid = s.reasons.(v) in
               if cid >= 0 then begin
                 if tr.cser.(cid) >= 0 then push tr.cser.(cid);
                 Array.iter (fun l -> push (-1 - lit_var l)) s.clauses.(cid).lits
               end
               (* reason -1: a decision or assumption; terminal *)
             end
           end
         end);
        go ()
    in
    go ();
    cone

let set_cone s roots =
  match s.track with
  | None -> ()
  | Some tr -> tr.cone <- Some (close s roots)

let rec backtrack s level =
  if decision_level s > level then begin
    let bound = Vec.get s.trail_lim level in
    for i = Vec.len s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.assigns.(v) <- -1;
      s.reasons.(v) <- -1;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim level;
    s.qhead <- bound
  end

and add_clause ?tag s lits =
  if not s.unsat then begin
    (* Simplification below inspects the level-0 assignment, so leave any
       decisions from a previous [solve] first. *)
    backtrack s 0;
    let lits = List.sort_uniq Stdlib.compare lits in
    log_orig s lits;
    let so = track_orig s tag in
    let tautology =
      List.exists (fun l -> List.mem (lit_not l) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if not (tautology || satisfied) then begin
      let kept = List.filter (fun l -> lit_value s l <> 0) lits in
      (* Literals false at level 0 are dropped before storing; the
         shortened clause is RUP w.r.t. the recorded CNF (the dropped
         negations are root-propagated), so it goes into the proof. *)
      let shortened = List.compare_lengths kept lits <> 0 in
      if shortened then log_add s kept;
      (* Serial of the clause as stored: the shortening is itself a
         derived step whose antecedents are the original clause plus
         the level-0 sources of every dropped literal. *)
      let eff =
        if shortened && s.track <> None then
          track_add s tag
            (so
            :: List.filter_map
                 (fun l ->
                   if lit_value s l = 0 then Some (-1 - lit_var l) else None)
                 lits)
        else so
      in
      match kept with
      | [] ->
        s.unsat <- true;
        set_cone s [ eff ]
      | [ l ] ->
        enqueue s l (-1);
        (match s.track with
        | Some tr -> tr.vser.(lit_var l) <- eff
        | None -> ())
      | _ ->
        let cid = add_clause_internal s (Array.of_list kept) false in
        (match s.track with
        | Some tr -> tr.cser.(cid) <- eff
        | None -> ())
    end
  end

(* {1 Propagation} *)

(* Returns the id of a conflicting clause, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < Vec.len s.trail do
    let l = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* [l] just became true; visit clauses watching [not l]. *)
    let ws = s.watches.(l) in
    let n = Vec.len ws in
    let kept = ref 0 in
    let i = ref 0 in
    while !i < n do
      let cid = Vec.get ws !i in
      incr i;
      let c = s.clauses.(cid) in
      if c.deleted then ()  (* lazily drop the watch *)
      else begin
      let false_lit = lit_not l in
      (* Normalise so the false literal is at position 1. *)
      if c.lits.(0) = false_lit then begin
        c.lits.(0) <- c.lits.(1);
        c.lits.(1) <- false_lit
      end;
      if lit_value s c.lits.(0) = 1 then begin
        (* Clause already satisfied; keep the watch. *)
        Vec.set ws !kept cid;
        incr kept
      end
      else begin
        (* Look for a new literal to watch. *)
        let found = ref false in
        let j = ref 2 in
        let len = Array.length c.lits in
        while (not !found) && !j < len do
          if lit_value s c.lits.(!j) <> 0 then begin
            c.lits.(1) <- c.lits.(!j);
            c.lits.(!j) <- false_lit;
            Vec.push s.watches.(lit_not c.lits.(1)) cid;
            found := true
          end;
          incr j
        done;
        if not !found then begin
          (* Unit or conflicting. *)
          Vec.set ws !kept cid;
          incr kept;
          if lit_value s c.lits.(0) = 0 then begin
            conflict := cid;
            (* Copy the remaining watches back and stop. *)
            while !i < n do
              Vec.set ws !kept (Vec.get ws !i);
              incr kept;
              incr i
            done;
            s.qhead <- Vec.len s.trail
          end
          else enqueue s c.lits.(0) cid
        end
      end
      end
    done;
    Vec.shrink ws !kept
  done;
  !conflict

(* {1 Learned-clause database reduction} *)

(* A clause is locked while it is the reason of an assigned variable:
   conflict analysis may dereference it, so it must survive reduction.
   Propagation keeps the propagated literal at position 0 for as long
   as the clause remains a reason. *)
let locked s cid =
  let c = s.clauses.(cid) in
  Array.length c.lits > 0
  &&
  let v = lit_var c.lits.(0) in
  s.assigns.(v) <> -1 && s.reasons.(v) = cid

let reduce_db s =
  let cands = ref [] in
  for cid = 0 to s.nclauses - 1 do
    let c = s.clauses.(cid) in
    if c.learned && (not c.deleted) && Array.length c.lits > 2
       && not (locked s cid)
    then cands := cid :: !cands
  done;
  let arr = Array.of_list !cands in
  Array.sort
    (fun a b -> Float.compare s.clauses.(a).activity s.clauses.(b).activity)
    arr;
  for i = 0 to (Array.length arr / 2) - 1 do
    let c = s.clauses.(arr.(i)) in
    c.deleted <- true;
    log_delete s c;
    s.nlearned <- s.nlearned - 1;
    s.learned_deleted <- s.learned_deleted + 1
  done;
  s.reductions <- s.reductions + 1;
  s.last_reduce <- s.conflicts

(* {1 Conflict analysis (first UIP)} *)

let analyze s conflict_cid =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let cid = ref conflict_cid in
  let index = ref (Vec.len s.trail - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  let tracking = s.track <> None in
  (* Antecedents of the learned clause: every clause this resolution
     chain dereferences, plus the level-0 variables it silently drops
     (their unit derivations are needed for the clause to be RUP over a
     trimmed database). *)
  let ants = ref [] in
  let record_clause c =
    if tracking then
      match s.track with
      | Some tr when tr.cser.(c) >= 0 -> ants := tr.cser.(c) :: !ants
      | _ -> ()
  in
  record_clause !cid;
  while !continue do
    let c = s.clauses.(!cid) in
    if c.learned then cla_bump s c;
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.levels.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.levels.(v) >= decision_level s then incr counter
        else begin
          learned := q :: !learned;
          if s.levels.(v) > !btlevel then btlevel := s.levels.(v)
        end
      end
      else if tracking && s.levels.(v) = 0 then ants := (-1 - v) :: !ants
    done;
    (* Walk the trail backwards to the next marked literal. *)
    while not s.seen.(lit_var (Vec.get s.trail !index)) do
      decr index
    done;
    let pl = Vec.get s.trail !index in
    decr index;
    p := pl;
    s.seen.(lit_var pl) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else begin
      cid := s.reasons.(lit_var pl);
      record_clause !cid
    end
  done;
  let learned_lits = lit_not !p :: !learned in
  List.iter (fun l -> s.seen.(lit_var l) <- false) !learned;
  (learned_lits, !btlevel, !ants)

let pick_branch_var s =
  let v = ref (-1) in
  while !v = -1 && s.heap_len > 0 do
    let cand = heap_pop s in
    if s.assigns.(cand) = -1 then v := cand
  done;
  !v

(* Luby sequence for restart intervals. *)
let rec luby i =
  (* Find the finite subsequence containing index i. *)
  let rec size_seq sz n = if sz >= i + 1 then (sz, n) else size_seq ((2 * sz) + 1) (n + 1) in
  let sz, n = size_seq 1 0 in
  if sz - 1 = i then float_of_int (1 lsl n)
  else luby (i - ((sz - 1) / 2))

let solve ?(max_conflicts = max_int) ?(assumptions = []) s =
  (* Restart the search from scratch (learned clauses, activities and
     saved phases persist); a previous Sat call leaves its trail in
     place for [value], so clear it here. *)
  backtrack s 0;
  if s.unsat then Unsat
    (* keep the cone captured when the database first became unsat *)
  else begin
    (match s.track with Some tr -> tr.cone <- None | None -> ());
    let assumps = Array.of_list assumptions in
    let status = ref None in
    let restart_idx = ref 0 in
    let conflicts_at_start = s.conflicts in
    while !status = None do
      let restart_budget = int_of_float (100. *. luby !restart_idx) in
      incr restart_idx;
      let local_conflicts = ref 0 in
      let restart = ref false in
      while !status = None && not !restart do
        let cid = propagate s in
        if cid >= 0 then begin
          s.conflicts <- s.conflicts + 1;
          incr local_conflicts;
          if decision_level s = 0 then begin
            (* A level-0 conflict involves no assumptions: the clause
               database itself is unsatisfiable, permanently. *)
            s.unsat <- true;
            log_add s [];
            (match s.track with
            | Some tr ->
              (* Empty clause = conflict clause resolved against the
                 unit derivations of each of its (all-false) literals. *)
              let deps =
                (if tr.cser.(cid) >= 0 then [ tr.cser.(cid) ] else [])
                @ Array.to_list
                    (Array.map
                       (fun l -> -1 - lit_var l)
                       s.clauses.(cid).lits)
              in
              let sa = track_add s None deps in
              set_cone s [ sa ]
            | None -> ());
            status := Some Unsat
          end
          else begin
            let learned, btlevel, ants = analyze s cid in
            backtrack s btlevel;
            (match learned with
            | [ l ] ->
              log_add s [ l ];
              let sa = track_add s None ants in
              enqueue s l (-1);
              (match s.track with
              | Some tr -> tr.vser.(lit_var l) <- sa
              | None -> ())
            | l :: _ ->
              log_add s learned;
              let sa = track_add s None ants in
              let lid = add_clause_internal s (Array.of_list learned) true in
              (match s.track with
              | Some tr -> tr.cser.(lid) <- sa
              | None -> ());
              enqueue s l lid
            | [] ->
              log_add s [];
              let sa = track_add s None ants in
              set_cone s [ sa ];
              status := Some Unsat);
            var_decay s;
            cla_decay s;
            if
              s.conflicts - s.last_reduce
              >= s.reduce_interval + (s.reduce_grow * s.reductions)
              && s.nlearned > 100
            then reduce_db s;
            if s.conflicts - conflicts_at_start >= max_conflicts then
              status := Some Unknown
            else if !local_conflicts >= restart_budget then restart := true
          end
        end
        else begin
          let dl = decision_level s in
          if dl < Array.length assumps then begin
            (* Assumption literals are decided first, in order, one per
               decision level (so restarts re-establish them). Learned
               clauses never resolve on assumption decisions, so clause
               learning stays sound across assumption sets. *)
            let al = assumps.(dl) in
            match lit_value s al with
            | 0 ->
              (* Implied false by the clauses + earlier assumptions:
                 unsat under these assumptions only. The cone is the
                 dependency closure of the implied assignment, taken
                 now while the reason graph is still in place. *)
              set_cone s [ -1 - lit_var al ];
              status := Some Unsat
            | 1 ->
              (* Already implied true; keep the level/index alignment
                 with an empty decision level. *)
              Vec.push s.trail_lim (Vec.len s.trail)
            | _ ->
              Vec.push s.trail_lim (Vec.len s.trail);
              enqueue s al (-1)
          end
          else begin
            let v = pick_branch_var s in
            if v = -1 then status := Some Sat
            else begin
              s.decisions <- s.decisions + 1;
              Vec.push s.trail_lim (Vec.len s.trail);
              enqueue s (lit v s.phase.(v)) (-1)
            end
          end
        end
      done;
      if !restart && !status = None then backtrack s 0
    done;
    match !status with
    | Some Sat -> Sat (* trail left assigned for [value] *)
    | Some st ->
      backtrack s 0;
      st
    | None -> assert false
  end

let value s v = s.assigns.(v) = 1

(* Drop clauses satisfied by the level-0 assignment. Used by the
   incremental solver front end after retiring scope selectors: every
   clause guarded by a retired selector is satisfied at level 0 and can
   be removed wholesale instead of burdening every future propagation. *)
let simplify s =
  if not s.unsat then begin
    backtrack s 0;
    let cid = propagate s in
    if cid >= 0 then begin
      s.unsat <- true;
      log_add s [];
      match s.track with
      | Some tr ->
        let deps =
          (if tr.cser.(cid) >= 0 then [ tr.cser.(cid) ] else [])
          @ Array.to_list
              (Array.map (fun l -> -1 - lit_var l) s.clauses.(cid).lits)
        in
        let sa = track_add s None deps in
        set_cone s [ sa ]
      | None -> ()
    end
    else
      for cid = 0 to s.nclauses - 1 do
        let c = s.clauses.(cid) in
        if
          (not c.deleted)
          && (not (locked s cid))
          && Array.exists (fun l -> lit_value s l = 1) c.lits
        then begin
          c.deleted <- true;
          log_delete s c;
          if c.learned then begin
            s.nlearned <- s.nlearned - 1;
            s.learned_deleted <- s.learned_deleted + 1
          end
          else begin
            s.nproblem <- s.nproblem - 1;
            s.problem_deleted <- s.problem_deleted + 1
          end
        end
      done
  end

(* {1 Cone accessors} *)

let last_cone_tags s =
  match s.track with
  | Some { cone = Some cone; tags; _ } ->
    let acc = Hashtbl.create 16 in
    Hashtbl.iter
      (fun ser () ->
        match Hashtbl.find_opt tags ser with
        | Some tag -> Hashtbl.replace acc tag ()
        | None -> ())
      cone;
    Hashtbl.fold (fun tag () l -> tag :: l) acc []
  | _ -> []

let trimmed_proof s =
  match (s.proof, s.track) with
  | Some p, Some ({ cone = Some cone; _ } as tr) ->
    (* [orig_rev]/[orig_ser_rev] and the P_add subsequence of
       [steps_rev]/[add_ser_rev] are newest-first and aligned entry for
       entry; folding left while prepending restores oldest-first. *)
    let cnf =
      List.fold_left2
        (fun acc lits ser -> if Hashtbl.mem cone ser then lits :: acc else acc)
        [] p.orig_rev tr.orig_ser_rev
    in
    let adds =
      let padds =
        List.filter (function P_add _ -> true | P_delete _ -> false)
          p.steps_rev
      in
      List.fold_left2
        (fun acc step ser -> if Hashtbl.mem cone ser then step :: acc else acc)
        [] padds tr.add_ser_rev
    in
    Some (cnf, adds)
  | _ -> None
