test/test_tables.ml: Alcotest Hashtbl List Printf QCheck QCheck_alcotest Random String Vdp_packet Vdp_tables
