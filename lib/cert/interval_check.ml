(* Independent replay of interval-refutation explanations.

   [Vdp_smt.Interval.explain] records which atoms of a conjunction drove
   some subject's unsigned interval empty. This module re-derives every
   step with its own pattern matching and its own range analysis —
   nothing here calls back into [Interval] — so the explanation is
   evidence to be checked, not an answer to be believed. The recorded
   bounds are ignored: each step's bound is recomputed from the atom, and
   the atom itself must occur in the raw conjunction being refuted.

   Trusted base: [Term]'s hash-consed representation (membership and
   side-shape tests compare node ids) and the arithmetic below. *)

module T = Vdp_smt.Term
module Sort = Vdp_smt.Sort
module B = Vdp_bitvec.Bitvec
module I = Vdp_smt.Interval

let max_width = 30

(* Sound unsigned over-approximation of a term's value range. Mirrors
   the shapes the producer's analysis understands (an intentionally
   re-derived copy: if the two disagree, replay fails closed and the
   producer falls back to a DRAT certificate). *)
let rec crange (t : T.t) : (int * int) option =
  let w = T.width t in
  if w > max_width then None
  else
    let full = Some (0, (1 lsl w) - 1) in
    match t.T.node with
    | T.Bv_const v ->
      let n = B.to_int_trunc v in
      Some (n, n)
    | T.Zext (_, a) -> ( match crange a with Some r -> Some r | None -> full)
    | T.Extract (hi, 0, a) -> (
      match crange a with
      | Some (lo', hi') when hi' < 1 lsl (hi + 1) -> Some (lo', hi')
      | _ -> full)
    | T.Bv_bin (T.Badd, a, b) -> (
      match (crange a, crange b) with
      | Some (la, ha), Some (lb, hb) when ha + hb < 1 lsl w ->
        Some (la + lb, ha + hb)
      | _ -> full)
    | T.Bv_bin (T.Bmul, a, b) -> (
      match (crange a, crange b) with
      | Some (la, ha), Some (lb, hb) when ha * hb < 1 lsl w ->
        Some (la * lb, ha * hb)
      | _ -> full)
    | T.Bv_bin (T.Band, a, b) ->
      let cap t' = match crange t' with Some (_, h) -> h | None -> (1 lsl w) - 1 in
      Some (0, min (cap a) (cap b))
    | T.Bv_bin (T.Blshr, a, b) -> (
      match (crange a, crange b) with
      | Some (_, ha), Some (k, k') when k = k' -> Some (0, ha lsr k)
      | _ -> full)
    | T.Bv_bin (T.Bshl, a, b) -> (
      match (crange a, crange b) with
      | Some (lo', hi'), Some (k, k') when k = k' && k < w && hi' lsl k < 1 lsl w
        ->
        Some (lo' lsl k, hi' lsl k)
      | _ -> full)
    | _ -> full

let point t = match crange t with Some (lo, hi) when lo = hi -> Some lo | _ -> None

(* The atoms of the raw conjunction, as a membership set on term ids. *)
let conjunct_ids (query : T.t list) =
  let ids = Hashtbl.create 32 in
  let rec collect (t : T.t) =
    match t.T.node with
    | T.And ts -> Array.iter collect ts
    | _ -> Hashtbl.replace ids t.T.id ()
  in
  List.iter collect query;
  ids

let member ids (t : T.t) = Hashtbl.mem ids t.T.id

(* The unsigned bound [atom] implies on [subject], derived from the
   atom's own shape; [None] when the atom says nothing we can see. An
   empty pair (lo > hi) means the atom alone is unsatisfiable. *)
let implied_bound (atom : T.t) (subject : T.t) : (int * int) option =
  let inner, positive =
    match atom.T.node with T.Not a -> (a, false) | _ -> (atom, true)
  in
  let max_subject = (1 lsl T.width subject) - 1 in
  match inner.T.node with
  | T.Bv_cmp (op, a, b) -> (
    let flip (op : T.cmp) : T.cmp =
      match op with T.Ult -> T.Ule | T.Ule -> T.Ult | T.Slt -> T.Sle | T.Sle -> T.Slt
    in
    (* not (a op b) == b (flip op) a *)
    let op, a, b = if positive then (op, a, b) else (flip op, b, a) in
    match op with
    | T.Ult when T.equal a subject -> (
      match point b with Some n -> Some (0, n - 1) | None -> None)
    | T.Ule when T.equal a subject -> (
      match point b with Some n -> Some (0, n) | None -> None)
    | T.Ult when T.equal b subject -> (
      match point a with Some n -> Some (n + 1, max_subject) | None -> None)
    | T.Ule when T.equal b subject -> (
      match point a with Some n -> Some (n, max_subject) | None -> None)
    | _ -> None)
  | T.Eq (a, b) when positive ->
    if T.equal a subject then
      match point b with Some n -> Some (n, n) | None -> None
    else if T.equal b subject then
      match point a with Some n -> Some (n, n) | None -> None
    else None
  | _ -> None

(* [atom] is [subject <> n]? *)
let implied_diseq (atom : T.t) (subject : T.t) : int option =
  match atom.T.node with
  | T.Not inner -> (
    match inner.T.node with
    | T.Eq (a, b) when not (Sort.is_bool (T.sort a)) ->
      if T.equal a subject then point b
      else if T.equal b subject then point a
      else None
    | _ -> None)
  | _ -> None

type outcome = (unit, string) result

let check (query : T.t list) (ex : I.explanation) : outcome =
  let ids = conjunct_ids query in
  match ex with
  | I.Ex_diseq_points atom -> (
    if not (member ids atom) then Error "diseq atom not in the conjunction"
    else
      match atom.T.node with
      | T.Not inner -> (
        match inner.T.node with
        | T.Eq (a, b) when not (Sort.is_bool (T.sort a)) -> (
          match (point a, point b) with
          | Some n, Some m when n = m -> Ok ()
          | _ -> Error "diseq sides are not the same point value")
        | _ -> Error "diseq atom is not a disequality")
      | _ -> Error "diseq atom is not a disequality")
  | I.Ex_interval { subject; steps } ->
    if T.width subject > max_width then Error "subject too wide to replay"
    else begin
      let lo, hi =
        match crange subject with
        | Some r -> r
        | None -> (0, max_int)
      in
      let lo = ref lo and hi = ref hi in
      let err = ref None in
      let empty = ref (!lo > !hi) in
      List.iter
        (fun step ->
          if !err = None then
            if !empty then err := Some "steps continue past the contradiction"
            else
              match step with
              | I.X_bound (atom, _, _) -> (
                if not (member ids atom) then
                  err := Some "bound atom not in the conjunction"
                else
                  match implied_bound atom subject with
                  | None -> err := Some "atom implies no bound on the subject"
                  | Some (l, h) ->
                    lo := max !lo l;
                    hi := min !hi h;
                    if !lo > !hi then empty := true)
              | I.X_shave (atom, n) -> (
                if not (member ids atom) then
                  err := Some "shave atom not in the conjunction"
                else
                  match implied_diseq atom subject with
                  | Some m when m = n ->
                    if !lo = n && !hi = n then empty := true
                    else if !lo = n then incr lo
                    else if !hi = n then decr hi
                    else err := Some "shaved value is not an endpoint"
                  | _ -> err := Some "atom is not a disequality on the subject"))
        steps;
      match !err with
      | Some e -> Error e
      | None -> if !empty then Ok () else Error "interval did not empty"
    end
