test/test_term.ml: Alcotest List Vdp_bitvec Vdp_smt
