(** TCP headers (the fields the dataplane elements look at). *)

let min_header_len = 20

let flag_fin = 0x01
let flag_syn = 0x02
let flag_rst = 0x04
let flag_ack = 0x10

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  data_off : int;  (** words *)
  flags : int;
  window : int;
}

let parse ?(off = 0) (p : Packet.t) =
  if Packet.length p < off + min_header_len then None
  else
    Some
      {
        src_port = Packet.get_be p off 2;
        dst_port = Packet.get_be p (off + 2) 2;
        seq = Packet.get_be p (off + 4) 4;
        ack = Packet.get_be p (off + 8) 4;
        data_off = Packet.get_u8 p (off + 12) lsr 4;
        flags = Packet.get_u8 p (off + 13);
        window = Packet.get_be p (off + 14) 2;
      }

let header ~src_port ~dst_port ~seq ~ack ~flags =
  let b = Bytes.make min_header_len '\000' in
  let be2 off v =
    Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 1) (Char.chr (v land 0xff))
  in
  let be4 off v =
    be2 off ((v lsr 16) land 0xffff);
    be2 (off + 2) (v land 0xffff)
  in
  be2 0 src_port;
  be2 2 dst_port;
  be4 4 seq;
  be4 8 ack;
  Bytes.set b 12 (Char.chr 0x50) (* data offset 5 words *);
  Bytes.set b 13 (Char.chr (flags land 0xff));
  be2 14 0xffff;
  Bytes.to_string b
