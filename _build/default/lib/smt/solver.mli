(** Satisfiability of quantifier-free bit-vector constraints.

    The pipeline is: smart-constructor folding (already applied by
    {!Term}), a cheap interval refutation, then bit-blasting onto the
    CDCL SAT core. Every [Sat] answer is re-validated by evaluating the
    original constraints under the extracted model, so a blasting bug
    can never produce a bogus counterexample. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown  (** conflict budget exhausted *)

type stats = {
  mutable calls : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable unknown_answers : int;
  mutable interval_refutations : int;
  mutable folded : int;  (** decided by constant folding alone *)
}

val stats : stats
(** Global, cumulative; reset with {!reset_stats}. *)

val reset_stats : unit -> unit

val check : ?max_conflicts:int -> Term.t list -> outcome
(** Satisfiability of the conjunction. *)

val check_term : ?max_conflicts:int -> Term.t -> outcome

val is_sat : ?max_conflicts:int -> Term.t list -> bool
(** [Unknown] counts as satisfiable (conservative for provers that must
    not miss violations). *)

val is_unsat : ?max_conflicts:int -> Term.t list -> bool
(** [true] only on a definite [Unsat]. *)

val pp_outcome : Format.formatter -> outcome -> unit
