lib/click/el_switch.ml: El_util Vdp_bitvec Vdp_ir
