(** Packet-processing elements: a named, configured IR program.

    An element consumes one packet per invocation and either emits it on
    one of its output ports, drops it, or crashes (which is what the
    verifier rules out). Elements carry their own store declarations;
    the pipeline instantiates fresh store state per element instance, so
    no two elements can ever share mutable state. *)

type t = {
  name : string;         (** instance name, unique within a pipeline *)
  cls : string;          (** class name, e.g. "CheckIPHeader" *)
  config : string list;  (** configuration arguments as written *)
  program : Vdp_ir.Types.program;
}

let make ~name ~cls ~config program =
  let program = Vdp_ir.Validate.check_program program in
  { name; cls; config; program }

let nports e = e.program.Vdp_ir.Types.nports

(** Key used to share Step-1 summaries between identical elements: two
    instances of the same class with the same config have the same
    program, hence the same segments. *)
let summary_key e = e.cls ^ "(" ^ String.concat "," e.config ^ ")"

let pp fmt e =
  Format.fprintf fmt "%s :: %s(%s)" e.name e.cls (String.concat ", " e.config)
