(** "App-market" elements — the paper's third use case: an operator (or
    market) wants to certify a third-party element before dropping it
    into a pipeline. [safe_dpi] passes certification; the buggy variants
    are rejected with concrete crashing packets. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

(** Scans the first [depth] payload bytes for a one-byte signature,
    with correct bounds checks. Port 0: clean, port 1: signature hit. *)
let safe_dpi ~signature ~depth =
  let b = Bld.create ~name:"SafeDPI" in
  Bld.set_nports b 2;
  let len = Bld.load_len b in
  let off = Bld.reg b ~width:16 in
  Bld.instr b (Ir.Assign (off, Ir.Move (c16 0)));
  let head = Bld.new_block b in
  let body = Bld.new_block b in
  let clean = Bld.new_block b in
  let hit = Bld.new_block b in
  Bld.term b (Ir.Goto head);
  Bld.select b head;
  let in_pkt = Bld.cmp b Ir.Ult (Ir.Reg off) (Ir.Reg len) in
  let in_depth = Bld.cmp b Ir.Ult (Ir.Reg off) (c16 depth) in
  let more =
    Bld.assign b ~width:1 (Ir.Binop (Ir.And, Ir.Reg in_pkt, Ir.Reg in_depth))
  in
  Bld.term b (Ir.Branch (Ir.Reg more, body, clean));
  Bld.select b body;
  let byte = Bld.load b ~off:(Ir.Reg off) ~n:1 in
  let is_sig = Bld.cmp b Ir.Eq (Ir.Reg byte) (c8 signature) in
  let cont = Bld.new_block b in
  Bld.term b (Ir.Branch (Ir.Reg is_sig, hit, cont));
  Bld.select b cont;
  Bld.instr b (Ir.Assign (off, Ir.Binop (Ir.Add, Ir.Reg off, c16 1)));
  Bld.term b (Ir.Goto head);
  Bld.select b clean;
  Bld.term b (Ir.Emit 0);
  Bld.select b hit;
  Bld.term b (Ir.Emit 1);
  Bld.finish b

(** BUG: reads the byte at an attacker-controlled offset (the IP header
    ident field) without checking it against the packet length. The
    verifier produces the crashing packet. *)
let buggy_peek () =
  let b = Bld.create ~name:"BuggyPeek" in
  let idx = Bld.load b ~off:(c16 4) ~n:2 in
  let byte = Bld.load b ~off:(Ir.Reg idx) ~n:1 in
  (* Use the byte so the load is not dead: stash it in an annotation. *)
  let wide = Bld.zext b ~width:32 (Ir.Reg byte) in
  Bld.instr b (Ir.Meta_set (Ir.W1, Ir.Reg wide));
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** BUG: computes a rate quotient dividing by the TTL byte — crashes by
    division by zero on TTL = 0 packets. *)
let buggy_quota ~quota =
  let b = Bld.create ~name:"BuggyQuota" in
  let ttl = Bld.load b ~off:(c16 8) ~n:1 in
  let ttl32 = Bld.zext b ~width:32 (Ir.Reg ttl) in
  let share =
    Bld.assign b ~width:32 (Ir.Binop (Ir.Udiv, c32 quota, Ir.Reg ttl32))
  in
  Bld.instr b (Ir.Meta_set (Ir.W1, Ir.Reg share));
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** BUG: counts packets in an 8-bit counter and asserts it never
    overflows — the classic counter-overflow the paper lists. The
    255th packet fails the assertion. *)
let buggy_counter () =
  let b = Bld.create ~name:"BuggyCounter" in
  Bld.declare_store b
    (Ir.store ~name:"c8" ~key_width:1 ~val_width:8 ~kind:Ir.Private
       ~default:(B.zero 8) ());
  let n = Bld.kv_read b ~store:"c8" ~key:(c1 false) ~val_width:8 in
  let not_max = Bld.cmp b Ir.Ne (Ir.Reg n) (c8 0xff) in
  Bld.instr b (Ir.Assert (Ir.Reg not_max, "packet counter overflow"));
  let n' = Bld.assign b ~width:8 (Ir.Binop (Ir.Add, Ir.Reg n, c8 1)) in
  Bld.instr b (Ir.Kv_write ("c8", c1 false, Ir.Reg n'));
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** BUG: NAT variant that asserts the port pool never empties instead
    of handling exhaustion. *)
let buggy_nat ~public_ip =
  let safe = El_stateful.ip_rewriter ~public_ip in
  (* Rebuild with the drop-on-exhaustion turned into an assert by
     post-processing the program: replace the [Drop] terminator that
     follows the exhaustion branch with an [Abort]. The drop block is
     the only bare Drop in the program. *)
  let blocks =
    Array.map
      (fun (blk : Ir.block) ->
        match blk.Ir.term with
        | Ir.Drop -> { blk with Ir.term = Ir.Abort "NAT port pool exhausted" }
        | _ -> blk)
      safe.Ir.blocks
  in
  { safe with Ir.blocks; Ir.name = "BuggyNAT" }
