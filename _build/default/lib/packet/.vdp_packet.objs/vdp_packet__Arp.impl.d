lib/packet/arp.ml: Bytes Char Ethernet Ipv4 Packet String
