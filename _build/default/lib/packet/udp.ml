(** UDP headers. *)

let header_len = 8

type t = { src_port : int; dst_port : int; length : int; checksum : int }

let parse ?(off = 0) (p : Packet.t) =
  if Packet.length p < off + header_len then None
  else
    Some
      {
        src_port = Packet.get_be p off 2;
        dst_port = Packet.get_be p (off + 2) 2;
        length = Packet.get_be p (off + 4) 2;
        checksum = Packet.get_be p (off + 6) 2;
      }

let header ~src_port ~dst_port ~payload_len =
  let length = header_len + payload_len in
  let b = Bytes.create header_len in
  Bytes.set b 0 (Char.chr ((src_port lsr 8) land 0xff));
  Bytes.set b 1 (Char.chr (src_port land 0xff));
  Bytes.set b 2 (Char.chr ((dst_port lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (dst_port land 0xff));
  Bytes.set b 4 (Char.chr ((length lsr 8) land 0xff));
  Bytes.set b 5 (Char.chr (length land 0xff));
  (* Checksum 0 = "not computed", legal for UDP over IPv4. *)
  Bytes.set b 6 '\000';
  Bytes.set b 7 '\000';
  Bytes.to_string b
