test/test_elements.ml: Alcotest List QCheck QCheck_alcotest Random String Vdp_bitvec Vdp_click Vdp_ir Vdp_packet Vdp_symbex Vdp_verif
