test/test_config.ml: Alcotest Array List Sys Vdp_click
