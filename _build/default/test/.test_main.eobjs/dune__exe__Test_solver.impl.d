test/test_solver.ml: Alcotest List QCheck QCheck_alcotest Vdp_bitvec Vdp_smt
