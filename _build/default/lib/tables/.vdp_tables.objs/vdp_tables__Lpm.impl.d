lib/tables/lpm.ml: List
