(** ARP over Ethernet/IPv4. *)

let packet_len = 28
let op_request = 1
let op_reply = 2

type t = {
  op : int;
  sender_mac : Ethernet.mac;
  sender_ip : Ipv4.addr;
  target_mac : Ethernet.mac;
  target_ip : Ipv4.addr;
}

let parse ?(off = 0) (p : Packet.t) =
  if Packet.length p < off + packet_len then None
  else if
    Packet.get_be p off 2 <> 1 (* htype ethernet *)
    || Packet.get_be p (off + 2) 2 <> Ethernet.ethertype_ipv4
    || Packet.get_u8 p (off + 4) <> 6
    || Packet.get_u8 p (off + 5) <> 4
  then None
  else
    Some
      {
        op = Packet.get_be p (off + 6) 2;
        sender_mac = String.init 6 (fun i -> Char.chr (Packet.get_u8 p (off + 8 + i)));
        sender_ip = Packet.get_be p (off + 14) 4;
        target_mac = String.init 6 (fun i -> Char.chr (Packet.get_u8 p (off + 18 + i)));
        target_ip = Packet.get_be p (off + 24) 4;
      }

let build t =
  let b = Bytes.make packet_len '\000' in
  let be2 off v =
    Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 1) (Char.chr (v land 0xff))
  in
  be2 0 1;
  be2 2 Ethernet.ethertype_ipv4;
  Bytes.set b 4 '\006';
  Bytes.set b 5 '\004';
  be2 6 t.op;
  Bytes.blit_string t.sender_mac 0 b 8 6;
  be2 14 ((t.sender_ip lsr 16) land 0xffff);
  be2 16 (t.sender_ip land 0xffff);
  Bytes.blit_string t.target_mac 0 b 18 6;
  be2 24 ((t.target_ip lsr 16) land 0xffff);
  be2 26 (t.target_ip land 0xffff);
  Bytes.to_string b
