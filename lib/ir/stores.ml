(** Runtime state of an element's key/value stores.

    Static stores are read-through views of their declared
    {!Static_data} contents — no copy, so a 1M-entry FIB instantiates in
    O(1) and a config mutation is visible to the runtime immediately.
    The interpreter rejects writes to them. Private stores start from a
    copy of their declared contents and evolve as packets are
    processed. *)

module B = Vdp_bitvec.Bitvec
open Types

type store = {
  decl : store_decl;
  table : (B.t, B.t) Hashtbl.t;  (** private stores only *)
}

type t = (string, store) Hashtbl.t

let init (decls : store_decl list) : t =
  let state = Hashtbl.create (max 4 (List.length decls)) in
  List.iter
    (fun decl ->
      if Hashtbl.mem state decl.store_name then
        invalid_arg ("Stores.init: duplicate store " ^ decl.store_name);
      let table =
        match decl.kind with
        | Static -> Hashtbl.create 1
        | Private ->
          let table = Hashtbl.create 64 in
          Static_data.iter (fun k v -> Hashtbl.replace table k v) decl.init;
          table
      in
      Hashtbl.replace state decl.store_name { decl; table })
    decls;
  state

let find state name =
  match Hashtbl.find_opt state name with
  | Some s -> s
  | None -> invalid_arg ("Stores: undeclared store " ^ name)

let read state name key =
  let s = find state name in
  if B.width key <> s.decl.key_width then
    invalid_arg ("Stores.read: key width mismatch in " ^ name);
  let v =
    match s.decl.kind with
    | Static -> Static_data.find s.decl.init key
    | Private -> Hashtbl.find_opt s.table key
  in
  match v with Some v -> v | None -> s.decl.default

let write state name key value =
  let s = find state name in
  (match s.decl.kind with
  | Static -> invalid_arg ("Stores.write: store is static: " ^ name)
  | Private -> ());
  if B.width key <> s.decl.key_width || B.width value <> s.decl.val_width
  then invalid_arg ("Stores.write: width mismatch in " ^ name);
  Hashtbl.replace s.table key value

let reset state =
  Hashtbl.iter
    (fun _ s ->
      match s.decl.kind with
      | Static -> ()
      | Private ->
        Hashtbl.reset s.table;
        Static_data.iter (fun k v -> Hashtbl.replace s.table k v) s.decl.init)
    state

let entries state name =
  let s = find state name in
  match s.decl.kind with
  | Static -> Static_data.to_list s.decl.init
  | Private -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.table []
