examples/quickstart.mli:
