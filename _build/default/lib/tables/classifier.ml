(** Click-style classifier patterns.

    A pattern is a list of clauses [offset/value] or [offset/value%mask]
    (hex value and mask, byte-aligned, any length), e.g. Click's
    ["12/0800"] meaning "bytes 12.. equal 0x0800". The wildcard pattern
    ["-"] matches everything. A classifier is an ordered list of
    patterns; the first match decides the output port. *)

type clause = {
  offset : int;
  value : string;  (** raw bytes to compare *)
  mask : string;   (** same length; 0xff = compare this bit *)
}

type pattern =
  | Match of clause list
  | Any

type t = pattern array

let parse_hex_bytes s =
  let n = String.length s in
  if n = 0 || n mod 2 <> 0 then
    invalid_arg ("Classifier: ragged hex string " ^ s);
  String.init (n / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let parse_clause s =
  match String.index_opt s '/' with
  | None -> invalid_arg ("Classifier: missing '/' in clause " ^ s)
  | Some slash ->
    let offset = int_of_string (String.sub s 0 slash) in
    let rest = String.sub s (slash + 1) (String.length s - slash - 1) in
    let value_hex, mask_hex =
      match String.index_opt rest '%' with
      | None -> (rest, String.make (String.length rest) 'f')
      | Some pct ->
        ( String.sub rest 0 pct,
          String.sub rest (pct + 1) (String.length rest - pct - 1) )
    in
    if String.length value_hex <> String.length mask_hex then
      invalid_arg ("Classifier: value/mask length mismatch in " ^ s);
    {
      offset;
      value = parse_hex_bytes value_hex;
      mask = parse_hex_bytes mask_hex;
    }

(** Parse one pattern spec: whitespace-separated clauses, or ["-"]. *)
let parse_pattern spec =
  let spec = String.trim spec in
  if spec = "-" then Any
  else
    Match
      (List.filter_map
         (fun tok -> if tok = "" then None else Some (parse_clause tok))
         (String.split_on_char ' ' spec))

let parse specs : t = Array.of_list (List.map parse_pattern specs)

let clause_matches (p : Vdp_packet.Packet.t) c =
  let n = String.length c.value in
  Vdp_packet.Packet.length p >= c.offset + n
  && (let ok = ref true in
      for i = 0 to n - 1 do
        let b = Vdp_packet.Packet.get_u8 p (c.offset + i) in
        let m = Char.code c.mask.[i] in
        if b land m <> Char.code c.value.[i] land m then ok := false
      done;
      !ok)

let pattern_matches p = function
  | Any -> true
  | Match clauses -> List.for_all (clause_matches p) clauses

(** First matching pattern's index, if any. *)
let classify (t : t) p =
  let rec go i =
    if i >= Array.length t then None
    else if pattern_matches p t.(i) then Some i
    else go (i + 1)
  in
  go 0

(** Largest offset+size any clause reads — used to compile bounds
    checks into the IR version. *)
let max_reach = function
  | Any -> 0
  | Match clauses ->
    List.fold_left
      (fun acc c -> max acc (c.offset + String.length c.value))
      0 clauses
