lib/ir/stores.ml: Hashtbl List Types Vdp_bitvec
