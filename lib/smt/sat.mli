(** CDCL SAT solver (MiniSat-style core).

    Literal encoding: variable [v] yields the positive literal [2 * v]
    and the negative literal [2 * v + 1]. Variables are created with
    {!new_var} before use. The solver is incremental: clauses may be
    added between {!solve} calls, and [solve ~assumptions] checks
    satisfiability under a set of assumed literals while retaining
    every learned clause for subsequent calls (the MiniSat interface).
    Scoped solving is built on top of this by guarding clause groups
    with fresh selector variables and assuming the active selectors.

    [solve ~max_conflicts] gives up with [Unknown] after the budget is
    exhausted — used by the verification benchmarks to emulate the
    "did not finish" outcome of the monolithic baseline. *)

type t

val create : unit -> t
val new_var : t -> int
val lit : int -> bool -> int
(** [lit v positive]. *)

val lit_not : int -> int
val lit_var : int -> int
val lit_is_pos : int -> bool

val add_clause : t -> int list -> unit
(** Adding the empty clause (or a clause that simplifies to it at level
    0) makes the instance trivially unsat. May be called after a [Sat]
    answer; any leftover search trail is undone first. *)

type result = Sat | Unsat | Unknown

val solve : ?max_conflicts:int -> ?assumptions:int list -> t -> result
(** Satisfiability of the clause database under the assumed literals
    (default none). [Unsat] under non-empty assumptions does not mean
    the database itself is unsat — dropping assumptions may restore
    satisfiability. Learned clauses, variable activities and saved
    phases carry over between calls. *)

val value : t -> int -> bool
(** Value of a variable in the satisfying assignment; only meaningful
    after [solve] returned [Sat]. Unassigned variables read as [false]. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
