(** Traffic-steering elements: CheckLength, CheckPaint, HashSwitch and
    RoundRobinSwitch. *)

module B = Vdp_bitvec.Bitvec
module Ir = Vdp_ir.Types
module Bld = Vdp_ir.Builder
open El_util

(** [CheckLength n] — packets longer than [n] bytes go to port 1
    (Click's CheckLength). *)
let check_length n =
  let b = Bld.create ~name:"CheckLength" in
  Bld.set_nports b 2;
  let len = Bld.load_len b in
  let ok = Bld.cmp b Ir.Ule (Ir.Reg len) (c16 n) in
  guard_or_port b (Ir.Reg ok) ~port:1;
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** [CheckPaint c] — packets painted [c] to port 0, others to port 1
    (Click's CheckPaint; exercises metadata in proofs). *)
let check_paint color =
  let b = Bld.create ~name:"CheckPaint" in
  Bld.set_nports b 2;
  let c = Bld.meta_get b Ir.Color in
  let hit = Bld.cmp b Ir.Eq (Ir.Reg c) (c8 color) in
  guard_or_port b (Ir.Reg hit) ~port:1;
  Bld.term b (Ir.Emit 0);
  Bld.finish b

(** [HashSwitch (offset, length, nports)] — hashes [length] packet
    bytes starting at [offset] (XOR-fold) and steers to one of
    [nports] ports. Packets too short for the hashed region go to
    port 0, like Click's HashSwitch chattering. *)
let hash_switch ~offset ~length ~nports =
  if nports < 1 then invalid_arg "HashSwitch: nports < 1";
  let b = Bld.create ~name:"HashSwitch" in
  Bld.set_nports b nports;
  let len = Bld.load_len b in
  let reach = Bld.cmp b Ir.Ule (c16 (offset + length)) (Ir.Reg len) in
  guard_or_port b (Ir.Reg reach) ~port:0;
  let acc = Bld.reg b ~width:8 in
  Bld.instr b (Ir.Assign (acc, Ir.Move (c8 0)));
  for i = 0 to length - 1 do
    let byte = Bld.load b ~off:(c16 (offset + i)) ~n:1 in
    Bld.instr b
      (Ir.Assign (acc, Ir.Binop (Ir.Xor, Ir.Reg acc, Ir.Reg byte)))
  done;
  (* Port = acc mod nports, computed by compare chain (nports small). *)
  let modulo =
    Bld.assign b ~width:8 (Ir.Binop (Ir.Urem, Ir.Reg acc, c8 nports))
  in
  let rec dispatch p =
    if p >= nports - 1 then Bld.term b (Ir.Emit (nports - 1))
    else begin
      let hit = Bld.cmp b Ir.Eq (Ir.Reg modulo) (c8 p) in
      let hit_blk = Bld.new_block b and next_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, next_blk));
      Bld.select b hit_blk;
      Bld.term b (Ir.Emit p);
      Bld.select b next_blk;
      dispatch (p + 1)
    end
  in
  dispatch 0;
  Bld.finish b

(** [RoundRobinSwitch nports] — cycles packets across output ports
    using a private counter. For the verifier this is a stateful
    element whose store read steers control flow: every port is
    reachable under the read-returns-anything model. *)
let round_robin_switch ~nports =
  if nports < 1 then invalid_arg "RoundRobinSwitch: nports < 1";
  let b = Bld.create ~name:"RoundRobinSwitch" in
  Bld.set_nports b nports;
  Bld.declare_store b
    (Ir.store ~name:"rr" ~key_width:1 ~val_width:16 ~kind:Ir.Private
       ~default:(B.zero 16) ());
  let cur = Bld.kv_read b ~store:"rr" ~key:(c1 false) ~val_width:16 in
  let nxt =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Add, Ir.Reg cur, c16 1))
  in
  let wrapped =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Urem, Ir.Reg nxt, c16 nports))
  in
  Bld.instr b (Ir.Kv_write ("rr", c1 false, Ir.Reg wrapped));
  let port =
    Bld.assign b ~width:16 (Ir.Binop (Ir.Urem, Ir.Reg cur, c16 nports))
  in
  let rec dispatch p =
    if p >= nports - 1 then Bld.term b (Ir.Emit (nports - 1))
    else begin
      let hit = Bld.cmp b Ir.Eq (Ir.Reg port) (c16 p) in
      let hit_blk = Bld.new_block b and next_blk = Bld.new_block b in
      Bld.term b (Ir.Branch (Ir.Reg hit, hit_blk, next_blk));
      Bld.select b hit_blk;
      Bld.term b (Ir.Emit p);
      Bld.select b next_blk;
      dispatch (p + 1)
    end
  in
  dispatch 0;
  Bld.finish b
