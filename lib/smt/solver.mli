(** Satisfiability of quantifier-free bit-vector constraints.

    The pipeline is: smart-constructor folding (already applied by
    {!Term}), word-level preprocessing ({!Preprocess}: equality
    substitution, constant propagation, unconstrained-variable
    elimination and component slicing), a memoizing query cache keyed
    on the preprocessed conjunction, a cheap interval refutation, then
    bit-blasting (with AIG-style gate sharing) onto the CDCL SAT core.
    Every [Sat] answer is completed with the eliminated variables'
    bindings and re-validated by evaluating the original constraints
    under the completed model, so neither a preprocessing nor a
    blasting bug can produce a bogus counterexample.

    Two front ends share that pipeline:
    - {!check} — one-shot: blasts the preprocessed conjunction into a
      fresh SAT instance and solves it;
    - {!create_ctx} / {!push} / {!assert_terms} / {!check_ctx} /
      {!pop} — incremental: one bit-blaster and SAT instance persist
      across checks. Each check preprocesses the live conjunction,
      asserts the residual conjuncts under a fresh throwaway selector
      literal, solves with that single assumption and then permanently
      retires the selector. Learned clauses, variable activities, gate
      encodings and the blasted term DAG all carry over between checks,
      which is what makes sibling composite paths (sharing long
      constraint prefixes) cheap to check in sequence. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown  (** conflict budget exhausted *)

type stats = {
  mutable calls : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable unknown_answers : int;
  mutable interval_refutations : int;
  mutable folded : int;  (** decided by preprocessing + folding alone *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable eliminated_conjuncts : int;
      (** equality-substituted + unconstrained conjuncts dropped *)
  mutable sliced_conjuncts : int;  (** dropped by component slicing *)
  mutable gate_hits : int;  (** structural gate-cache hits while blasting *)
  mutable gate_misses : int;  (** distinct gates actually encoded *)
  mutable sat_vars : int;  (** SAT variables created while solving *)
  mutable sat_clauses : int;  (** problem clauses added while solving *)
  mutable learned_deleted : int;  (** learned clauses deleted by reduction *)
  mutable preprocess_time : float;  (** wall seconds per phase... *)
  mutable blast_time : float;
  mutable sat_time : float;
  mutable cert_attempted : int;
      (** certification counters, bumped by [Vdp_cert]: refutations a
          certificate was requested for *)
  mutable cert_checked : int;  (** certificates independently validated *)
  mutable cert_failed : int;  (** produced but rejected, or unproducible *)
  mutable cert_cached : int;  (** discharged by provenance to a checked proof *)
  mutable cert_drat : int;  (** discharged by a checked DRAT proof *)
  mutable cert_interval : int;  (** discharged by interval-explanation replay *)
  mutable cert_folded : int;  (** discharged by constant folding *)
  mutable cert_proof_clauses : int;  (** DRAT clause additions logged *)
  mutable cert_proof_deletions : int;  (** DRAT clause deletions logged *)
  mutable cert_solve_time : float;
      (** wall seconds re-blasting + re-solving to produce proofs *)
  mutable cert_check_time : float;
      (** wall seconds in the independent checker *)
  mutable cert_pcache_hits : int;
      (** refutations discharged by the proof cache (a previously
          produced-and-checked proof re-checked against this query) *)
  mutable cert_trimmed_clauses : int;
      (** DRAT proof additions kept after backward trimming *)
  mutable cert_untrimmed_clauses : int;
      (** DRAT proof additions before trimming (the forward log) *)
  mutable sched_spawned : int;
      (** scheduler counters, copied from [Vdp_core.Pool] after a
          parallel run: tasks spawned *)
  mutable sched_executed : int;  (** tasks executed *)
  mutable sched_stolen : int;
      (** tasks executed by a domain other than their spawner *)
  mutable sched_busy : float;  (** cumulative task execution seconds *)
  mutable sched_idle : float;  (** cumulative runner wait seconds *)
  mutable sched_hist : int array;
      (** task-duration histogram: <1ms, <10ms, <100ms, <1s, rest *)
}

val stats : stats
(** Process-wide aggregate over every front end and context; reset with
    {!reset_stats}. Per-context counters live in {!ctx_stats}. *)

val reset_stats : unit -> unit
val fresh_stats : unit -> stats

(** {1 Query cache} *)

(** Memoizes definite ([Sat]/[Unsat]) answers keyed on the hash-consed
    id of the *preprocessed* constraint conjunction, so queries that
    differ only in eliminated conjuncts collide; cached [Sat] models
    are re-completed per hit. [Unknown] answers are never cached
    because they depend on the conflict budget. Bounded, with FIFO
    eviction. *)
module Cache : sig
  type t

  val create : ?capacity:int -> unit -> t
  val clear : t -> unit
  val length : t -> int

  val invalidate_static :
    t -> sid:int -> key:Vdp_bitvec.Bitvec.t -> int
  (** Drop every entry whose dep list includes the static-state slice
      ([Vdp_ir.Static_data] id, concrete key); returns how many were
      dropped. Called on config mutation so a rule change invalidates
      only dependent queries. *)

  val invalidations : t -> int
  (** Total entries dropped by {!invalidate_static} over the cache's
      lifetime. *)
end

val shared_cache : Cache.t
(** A default process-wide cache; identical composite conditions recur
    across properties checked on the same pipeline. *)

(** {1 One-shot checking} *)

val check :
  ?max_conflicts:int -> ?cache:Cache.t ->
  ?deps:(int * Vdp_bitvec.Bitvec.t) list -> ?preprocess:bool ->
  Term.t list -> outcome
(** Satisfiability of the conjunction. No caching unless [cache] is
    supplied; word-level preprocessing is on unless [preprocess:false].
    [deps] tags the cache entry with the static-state slices the
    conjunction was built from (see {!Cache.invalidate_static}). *)

val check_term : ?max_conflicts:int -> Term.t -> outcome

val is_sat : ?max_conflicts:int -> Term.t list -> bool
(** [Unknown] counts as satisfiable (conservative for provers that must
    not miss violations). *)

val is_unsat : ?max_conflicts:int -> Term.t list -> bool
(** [true] only on a definite [Unsat]. *)

(** {1 Incremental contexts} *)

type ctx

val create_ctx :
  ?cache:Cache.t -> ?preprocess:bool -> ?track_core:bool -> unit -> ctx
(** A fresh context with one root scope. Contexts are not thread-safe;
    create one per exploration. [track_core] turns on antecedent
    tracking in the underlying SAT solver: every [Unsat] from
    {!check_ctx} then exposes an unsat core over the residual conjuncts
    via {!last_core} (certificate producers blast only that subset). *)

val push : ctx -> unit
(** Open a new scope; subsequent {!assert_terms} go into it. *)

val pop : ctx -> unit
(** Discard the innermost scope and its assertions. Learned clauses
    survive. Raises [Invalid_argument] on the root scope. *)

val assert_terms : ctx -> Term.t list -> unit
(** Add constraints to the innermost scope. Terms are recorded
    word-level; bit-blasting happens per check on the preprocessed
    conjunction (each distinct term and gate is still only encoded
    once, ever, thanks to the persistent blaster). *)

val assert_term : ctx -> Term.t -> unit

val check_ctx :
  ?max_conflicts:int -> ?deps:(int * Vdp_bitvec.Bitvec.t) list -> ctx ->
  outcome
(** Satisfiability of the conjunction of all live scopes' assertions. *)

val depth : ctx -> int
(** Number of scopes pushed (0 = only the root scope). *)

val asserted : ctx -> Term.t list
(** All live assertions, innermost scope first, newest first. *)

val ctx_stats : ctx -> stats
(** This context's own counters (also folded into {!stats}). *)

val last_pre : ctx -> Preprocess.result option
(** Preprocessing result of the most recent {!check_ctx} on this
    context, when the check got as far as preprocessing (i.e. was not
    decided by folding or raw interval refutation). Certificate
    producers reuse it so the certified residual — and the proof-cache
    key — are exactly the ones the query cache saw. *)

val last_core : ctx -> Term.t list option
(** Unsat core of the most recent {!check_ctx}, when the context was
    created with [track_core:true] and the answer was a solver-level
    [Unsat]: the subset of [last_pre]'s residual conjuncts whose root
    clauses lie in the SAT solver's dependency cone. Refuting this
    subset refutes the residual. *)

val pp_outcome : Format.formatter -> outcome -> unit
