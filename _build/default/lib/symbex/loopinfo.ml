(** Static loop analysis on IR control-flow graphs.

    Identifies natural loops (back edges and their bodies), the
    registers a loop body modifies, and whether the body branches beyond
    the loop guard — the heuristic the engine uses to decide between
    plain unrolling (cheap, precise, fine for counted straight-line
    loops like checksums) and havoc summarisation (the paper's
    mini-element decomposition, needed when each iteration multiplies
    paths, as in IP-options parsing). *)

module Ir = Vdp_ir.Types

type loop = {
  head : int;
  body : int list;          (** blocks of the natural loop, including head *)
  modified_regs : int list;
  modified_meta : Ir.meta list;
  body_branches : int;      (** branch terminators in body blocks other than the head *)
  has_head_adjust : bool;   (** Pull/Push/Take inside the body *)
}

let successors (blk : Ir.block) =
  match blk.Ir.term with
  | Ir.Goto l -> [ l ]
  | Ir.Branch (_, t, e) -> [ t; e ]
  | Ir.Emit _ | Ir.Drop | Ir.Abort _ -> []

let reachable_from (prog : Ir.program) start =
  let n = Array.length prog.Ir.blocks in
  let seen = Array.make n false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter go (successors prog.Ir.blocks.(b))
    end
  in
  go start;
  seen

(* Iterative dominator computation (small CFGs; sets as bool arrays).
   dom.(b) = set of blocks dominating b. Entry is block 0. *)
let dominators (prog : Ir.program) =
  let n = Array.length prog.Ir.blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun b blk ->
      List.iter (fun s -> preds.(s) <- b :: preds.(s)) (successors blk))
    prog.Ir.blocks;
  let reach = reachable_from prog 0 in
  let dom = Array.init n (fun b ->
      if b = 0 then
        Array.init n (fun i -> i = 0)
      else Array.make n true)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n - 1 do
      if reach.(b) then begin
        let inter = Array.make n true in
        let have_pred = ref false in
        List.iter
          (fun p ->
            if reach.(p) then begin
              have_pred := true;
              for i = 0 to n - 1 do
                if not dom.(p).(i) then inter.(i) <- false
              done
            end)
          preds.(b);
        if not !have_pred then Array.fill inter 0 n false;
        inter.(b) <- true;
        if inter <> dom.(b) then begin
          dom.(b) <- inter;
          changed := true
        end
      end
    done
  done;
  dom

(* Natural loop of back edge (tail -> head): head, tail, and everything
   that reaches tail without passing through head. *)
let natural_loop (prog : Ir.program) ~head ~tail =
  let n = Array.length prog.Ir.blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun b blk ->
      List.iter (fun s -> preds.(s) <- b :: preds.(s)) (successors blk))
    prog.Ir.blocks;
  let in_loop = Array.make n false in
  in_loop.(head) <- true;
  let rec pull b =
    if not in_loop.(b) then begin
      in_loop.(b) <- true;
      List.iter pull preds.(b)
    end
  in
  pull tail;
  List.filter (fun b -> in_loop.(b)) (List.init n Fun.id)

let instr_writes_reg = function
  | Ir.Assign (r, _) | Ir.Load (r, _, _) | Ir.Load_len r | Ir.Meta_get (r, _)
  | Ir.Kv_read (r, _, _) ->
    Some r
  | Ir.Store _ | Ir.Pull _ | Ir.Push _ | Ir.Take _ | Ir.Meta_set _
  | Ir.Kv_write _ | Ir.Assert _ ->
    None

let analyze (prog : Ir.program) : loop list =
  let nblocks = Array.length prog.Ir.blocks in
  let dom = dominators prog in
  let loops = ref [] in
  for head = 0 to nblocks - 1 do
    (* Back edges into [head]: predecessors that [head] dominates. *)
    let tails =
      List.filter
        (fun b ->
          dom.(b).(head)
          && List.mem head (successors prog.Ir.blocks.(b)))
        (List.init nblocks Fun.id)
    in
    if tails <> [] then begin
      let body =
        List.sort_uniq Stdlib.compare
          (List.concat_map (fun tail -> natural_loop prog ~head ~tail) tails)
      in
      let modified_regs = ref [] in
      let modified_meta = ref [] in
      let branches = ref 0 in
      let head_adjust = ref false in
      List.iter
        (fun b ->
          let blk = prog.Ir.blocks.(b) in
          List.iter
            (fun ins ->
              (match instr_writes_reg ins with
              | Some r -> modified_regs := r :: !modified_regs
              | None -> ());
              match ins with
              | Ir.Meta_set (m, _) -> modified_meta := m :: !modified_meta
              | Ir.Pull _ | Ir.Push _ | Ir.Take _ -> head_adjust := true
              | _ -> ())
            blk.Ir.instrs;
          match blk.Ir.term with
          | Ir.Branch _ when b <> head -> incr branches
          | _ -> ())
        body;
      loops :=
        {
          head;
          body;
          modified_regs = List.sort_uniq Stdlib.compare !modified_regs;
          modified_meta = List.sort_uniq Stdlib.compare !modified_meta;
          body_branches = !branches;
          has_head_adjust = !head_adjust;
        }
        :: !loops
    end
  done;
  List.rev !loops

let loop_at loops head = List.find_opt (fun l -> l.head = head) loops
