lib/packet/gen.ml: Array Char Ethernet Ipv4 List Packet Random String Tcp Udp
