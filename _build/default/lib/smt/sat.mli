(** CDCL SAT solver (MiniSat-style core).

    Literal encoding: variable [v] yields the positive literal [2 * v]
    and the negative literal [2 * v + 1]. Variables are created with
    {!new_var} before use. The solver is single-shot but incremental in
    the sense that clauses may be added between {!solve} calls.

    [solve ~max_conflicts] gives up with [Unknown] after the budget is
    exhausted — used by the verification benchmarks to emulate the
    "did not finish" outcome of the monolithic baseline. *)

type t

val create : unit -> t
val new_var : t -> int
val lit : int -> bool -> int
(** [lit v positive]. *)

val lit_not : int -> int
val lit_var : int -> int
val lit_is_pos : int -> bool

val add_clause : t -> int list -> unit
(** Adding the empty clause (or a clause that simplifies to it at level
    0) makes the instance trivially unsat. *)

type result = Sat | Unsat | Unknown

val solve : ?max_conflicts:int -> t -> result
val value : t -> int -> bool
(** Value of a variable in the satisfying assignment; only meaningful
    after [solve] returned [Sat]. Unassigned variables read as [false]. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
