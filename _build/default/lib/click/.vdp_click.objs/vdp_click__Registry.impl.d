lib/click/registry.ml: El_arp El_basic El_classifier El_filter El_icmp El_ip El_lookup El_market El_stateful El_switch Element Hashtbl List String Vdp_ir Vdp_packet
