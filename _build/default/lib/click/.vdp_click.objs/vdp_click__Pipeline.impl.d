lib/click/pipeline.ml: Array Element Format List Printf
