(** A fabric: multiple pipelines wired output-to-input.

    This is the resolved, validated form of a [topology { ... }]
    section ({!Vdp_click.Config.topo}): pipelines indexed densely,
    links keyed by (pipeline, egress index), named fabric-level
    ingresses and egresses, and the declared relational properties.
    The module also owns the {e concrete} side of the story — a wired
    set of {!Vdp_click.Runtime} instances that pushes real packets
    across link crossings, which is what breach witnesses replay on.

    Conventions:
    - A pipeline's egress points are numbered as in
      {!Vdp_click.Pipeline.egress_points}; a link attaches one of them
      to the entry element of another pipeline at a given input port.
    - Crossing a link rewrites only the packet's port annotation (a
      link is a wire); bytes and other metadata carry over.
    - Fabric-level position tags are ["p<pipe>n<node>"] — the
      per-pipeline ["n<node>"] tags of {!Vdp_verif.Compose} prefixed
      with the pipeline index, so one composite state can span
      pipelines without tag collisions. *)

module Ir = Vdp_ir.Types
module P = Vdp_packet.Packet
module Pipeline = Vdp_click.Pipeline
module Config = Vdp_click.Config
module Runtime = Vdp_click.Runtime

exception Bad_fabric of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad_fabric m)) fmt

type pipe = {
  p_name : string;
  p_index : int;
  p_pl : Pipeline.t;
  p_egress : (int * int) array;
      (** egress index -> (node, out-port) of the unwired output *)
}

type t = {
  pipes : pipe array;
  links : (int * int, int * int) Hashtbl.t;
      (** (src pipe, egress index) -> (dst pipe, dst entry in-port) *)
  ingresses : (string * (int * int)) list;  (** name -> (pipe, in-port) *)
  egresses : (string * (int * int)) list;
      (** name -> (pipe, egress index); the egress must be unlinked *)
  props : Config.topo_prop list;
}

(* {1 Tags} *)

let tag ~pipe ~node = Printf.sprintf "p%dn%d" pipe node

(** Inverse of {!tag}; [None] for tags minted elsewhere. *)
let parse_tag s =
  if String.length s < 4 || s.[0] <> 'p' then None
  else
    match String.index_opt s 'n' with
    | None -> None
    | Some i -> (
      match
        ( int_of_string_opt (String.sub s 1 (i - 1)),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        )
      with
      | Some pi, Some n -> Some (pi, n)
      | _ -> None)

(* {1 Resolution} *)

let pipe_index t name =
  let rec go i =
    if i >= Array.length t.pipes then fail "unknown pipeline %s" name
    else if t.pipes.(i).p_name = name then i
    else go (i + 1)
  in
  go 0

let pipe t i = t.pipes.(i)

(* Resolve a Config.port_ref to (pipe index, egress index). *)
let resolve_egress pipes (r : Config.port_ref) =
  let pi =
    let rec go i =
      if i >= Array.length pipes then
        fail "unknown pipeline %s" r.Config.ref_pipeline
      else if pipes.(i).p_name = r.Config.ref_pipeline then i
      else go (i + 1)
    in
    go 0
  in
  let p = pipes.(pi) in
  match r.Config.ref_element with
  | None ->
    if r.Config.ref_port >= Array.length p.p_egress then
      fail "pipeline %s has %d egress points, no egress %d" p.p_name
        (Array.length p.p_egress) r.Config.ref_port;
    (pi, r.Config.ref_port)
  | Some el -> (
    let nodes = Pipeline.nodes p.p_pl in
    let node = ref (-1) in
    Array.iteri
      (fun i (n : Pipeline.node) ->
        if n.Pipeline.element.Vdp_click.Element.name = el then node := i)
      nodes;
    if !node < 0 then fail "pipeline %s has no element %s" p.p_name el;
    match Pipeline.egress_index p.p_pl ~node:!node ~port:r.Config.ref_port with
    | Some e -> (pi, e)
    | None ->
      fail "%s.%s[%d] is wired inside the pipeline — not an egress"
        p.p_name el r.Config.ref_port)

(** Resolve and validate a parsed topology. *)
let of_topo (topo : Config.topo) : t =
  if topo.Config.topo_pipelines = [] then fail "topology declares no pipeline";
  let pipes =
    Array.of_list
      (List.mapi
         (fun i (name, pl) ->
           {
             p_name = name;
             p_index = i;
             p_pl = pl;
             p_egress = Pipeline.egress_points pl;
           })
         topo.Config.topo_pipelines)
  in
  let links = Hashtbl.create 8 in
  List.iter
    (fun (src, dst, dport) ->
      let spi, se = resolve_egress pipes src in
      let dpi =
        let rec go i =
          if i >= Array.length pipes then fail "unknown pipeline %s" dst
          else if pipes.(i).p_name = dst then i
          else go (i + 1)
        in
        go 0
      in
      if Hashtbl.mem links (spi, se) then
        fail "egress %d of pipeline %s is linked twice" se pipes.(spi).p_name;
      Hashtbl.replace links (spi, se) (dpi, dport))
    topo.Config.topo_links;
  let t0 =
    {
      pipes;
      links;
      ingresses =
        List.map
          (fun (name, pl, port) ->
            let pi =
              let rec go i =
                if i >= Array.length pipes then fail "unknown pipeline %s" pl
                else if pipes.(i).p_name = pl then i
                else go (i + 1)
              in
              go 0
            in
            (name, (pi, port)))
          topo.Config.topo_ingresses;
      egresses =
        List.map
          (fun (name, r) ->
            let pi, e = resolve_egress pipes r in
            if Hashtbl.mem links (pi, e) then
              fail "fabric egress %s names a linked output" name;
            (name, (pi, e)))
          topo.Config.topo_egresses;
      props = topo.Config.topo_props;
    }
  in
  List.iter
    (fun p ->
      let name =
        match p with
        | Config.Reach (a, b) | Config.Isolate (a, b) | Config.Temporal (a, b)
          ->
          (a, b)
      in
      let a, b = name in
      if not (List.mem_assoc a t0.ingresses) then
        fail "property names unknown ingress %s" a;
      if not (List.mem_assoc b t0.egresses) then
        fail "property names unknown egress %s" b)
    t0.props;
  t0

let of_source path =
  match Config.parse_source_file path with
  | Config.Fabric topo -> of_topo topo
  | Config.Single _ ->
    fail "%s declares a single pipeline, not a topology" path

let ingress t name =
  match List.assoc_opt name t.ingresses with
  | Some x -> x
  | None -> fail "unknown ingress %s" name

let egress t name =
  match List.assoc_opt name t.egresses with
  | Some x -> x
  | None -> fail "unknown egress %s" name

(** The fabric egress name covering (pipe, egress index), if any. *)
let egress_name t ~pipe ~eg =
  List.fold_left
    (fun acc (name, (pi, e)) ->
      if pi = pipe && e = eg then Some name else acc)
    None t.egresses

(* {1 Concrete wired runtimes} *)

type instance = { fab : t; insts : Runtime.instance array }

let instantiate ?engine fab =
  {
    fab;
    insts =
      Array.map
        (fun p -> Runtime.instantiate ?engine ~label:p.p_name p.p_pl)
        fab.pipes;
  }

(** How a fabric-level run ended. *)
type ffinal =
  | F_egress of int * int  (** (pipe, egress index) — unlinked output *)
  | F_drop of int * int  (** (pipe, node) *)
  | F_crash of int * int * Ir.crash
  | F_budget of int * int  (** per-pipeline hop budget, or link-loop cap *)

type frun = {
  f_final : ffinal;
  f_steps : Runtime.step list;  (** concatenated, labeled per pipeline *)
  f_instrs : int;
  f_crossings : int;  (** links traversed *)
}

(* A packet that keeps bouncing between pipelines is cut off here —
   the symbolic side enumerates to the same depth. *)
let max_crossings = 16

(** Push one packet into [pipe] at [in_port] and follow link crossings.
    The packet object is mutated along the way, as in {!Runtime.push};
    crossing a link only rewrites its port annotation. *)
let push ?trace fi ~pipe ~in_port pkt =
  let steps = ref [] in
  let instrs = ref 0 in
  let rec go pi in_port crossings =
    let run = Runtime.push ~in_port ?trace fi.insts.(pi) pkt in
    steps := List.rev_append run.Runtime.steps !steps;
    instrs := !instrs + run.Runtime.total_instrs;
    match run.Runtime.final with
    | Runtime.Egress e -> (
      match Hashtbl.find_opt fi.fab.links (pi, e) with
      | Some (dpi, dport) ->
        if crossings >= max_crossings then (F_budget (pi, e), crossings)
        else go dpi dport (crossings + 1)
      | None -> (F_egress (pi, e), crossings))
    | Runtime.Dropped_at n -> (F_drop (pi, n), crossings)
    | Runtime.Crashed_at (n, c) -> (F_crash (pi, n, c), crossings)
    | Runtime.Hop_budget_at n -> (F_budget (pi, n), crossings)
  in
  let f_final, f_crossings = go pipe in_port 0 in
  {
    f_final;
    f_steps = List.rev !steps;
    f_instrs = !instrs;
    f_crossings;
  }

let ffinal_to_string fab = function
  | F_egress (pi, e) ->
    let extra =
      match egress_name fab ~pipe:pi ~eg:e with
      | Some n -> Printf.sprintf " (%s)" n
      | None -> ""
    in
    Printf.sprintf "egress %s[%d]%s" fab.pipes.(pi).p_name e extra
  | F_drop (pi, n) ->
    Printf.sprintf "drop at %s:node %d" fab.pipes.(pi).p_name n
  | F_crash (pi, n, c) ->
    Format.asprintf "crash at %s:node %d (%a)" fab.pipes.(pi).p_name n
      Ir.pp_crash c
  | F_budget (pi, n) ->
    Printf.sprintf "budget exceeded in %s at %d" fab.pipes.(pi).p_name n
